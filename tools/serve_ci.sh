#!/usr/bin/env bash
# CI driver for the postr-serve daemon: boots it with forked workers and
# proves, from the outside, the properties the service promises.
#
#   1. Fidelity  — every tests/corpus/*.smt2 served cold and warm gives
#                  the same verdict line and exit code as one-shot
#                  smtlib_cli, and the warm pass hits the cache.
#   2. Containment — a worker crashing mid-query (x-test-abort) and a
#                  worker SIGKILLed from the outside both end in a
#                  correct served verdict, never a daemon crash.
#   3. Faults    — with POSTR_FAULT_INJECT armed at several sites the
#                  daemon still answers every corpus query structurally
#                  (sat/unsat/unknown (reason)) and stays healthy.
#
# Usage: tools/serve_ci.sh [build-dir]   (default: build)

set -u

BUILD=${1:-build}
SERVE="$BUILD/tools/postr_serve"
CLIENT="$BUILD/tools/postr_client"
CLI="$BUILD/examples/smtlib_cli"
CORPUS_DIR=$(dirname "$0")/../tests/corpus
SOCK_DIR=$(mktemp -d)
trap 'rm -rf "$SOCK_DIR"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null' EXIT

FAILURES=0
fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }

for bin in "$SERVE" "$CLIENT" "$CLI"; do
  [ -x "$bin" ] || { echo "missing binary $bin" >&2; exit 2; }
done

start_daemon() { # args: socket-path [env assignments...]
  local sock=$1; shift
  env "$@" "$SERVE" --socket "$sock" &
  SERVE_PID=$!
  "$CLIENT" --socket "$sock" --wait-ms 5000 --ping >/dev/null ||
    { echo "daemon failed to come up" >&2; exit 2; }
}

stop_daemon() { # args: socket-path
  "$CLIENT" --socket "$1" --shutdown >/dev/null 2>&1
  wait "$SERVE_PID" 2>/dev/null
  SERVE_PID=
}

# --- 1. Fidelity: served == one-shot, cold and warm ----------------------
SOCK=$SOCK_DIR/fidelity.sock
start_daemon "$SOCK" POSTR_SERVE_WORKERS=2
for pass in cold warm; do
  for f in "$CORPUS_DIR"/*.smt2; do
    want_out=$("$CLI" "$f"); want_rc=$?
    got_out=$("$CLIENT" --socket "$SOCK" "$f"); got_rc=$?
    [ "$got_rc" -eq "$want_rc" ] ||
      fail "$pass $(basename "$f"): exit $got_rc, one-shot $want_rc"
    # Verdict line must match byte for byte; the client appends a
    # "; cache ..." line the one-shot path doesn't have.
    [ "$(echo "$got_out" | head -1)" = "$(echo "$want_out" | head -1)" ] ||
      fail "$pass $(basename "$f"): verdict '$(echo "$got_out" | head -1)'" \
           "vs one-shot '$(echo "$want_out" | head -1)'"
    if [ "$pass" = warm ] && [ "$want_rc" -eq 0 ]; then
      echo "$got_out" | grep -q "^; cache hit$" ||
        fail "warm $(basename "$f"): expected a cache hit"
    fi
  done
done
stop_daemon "$SOCK"

# --- 2. Containment: crash mid-query and external SIGKILL ----------------
SOCK=$SOCK_DIR/contain.sock
start_daemon "$SOCK" POSTR_SERVE_WORKERS=2 POSTR_SERVE_ALLOW_TEST_ABORT=1
F=$CORPUS_DIR/sat_position_mix.smt2
want=$("$CLI" "$F" | head -1)

# (a) The worker aborts mid-query; the daemon quarantines, rebuilds, and
# the retry still answers correctly.
got=$("$CLIENT" --socket "$SOCK" --no-cache --test-abort "$F" | head -1)
[ "$got" = "$want" ] || fail "test-abort recovery: got '$got', want '$want'"

# (b) SIGKILL a live worker child from the outside, then query: the
# daemon must notice the corpse, respawn, and answer.
WORKER_PID=$(pgrep -P "$SERVE_PID" | head -1)
if [ -n "$WORKER_PID" ]; then
  kill -9 "$WORKER_PID"
  sleep 0.2
else
  fail "no forked worker child found to SIGKILL"
fi
got=$("$CLIENT" --socket "$SOCK" --no-cache "$F" | head -1)
[ "$got" = "$want" ] || fail "post-SIGKILL solve: got '$got', want '$want'"

STATS=$("$CLIENT" --socket "$SOCK" --stats)
echo "$STATS" | grep -q '"worker_crashes": [1-9]' ||
  fail "stats did not record the worker crashes: $STATS"
echo "$STATS" | grep -q '"quarantines": [1-9]' ||
  fail "stats did not record the quarantines: $STATS"
stop_daemon "$SOCK"

# --- 3. Fault-injection sweep: structured replies, daemon survives -------
for site in nfa.determinize lia.simplex solver.disjunct; do
  SOCK=$SOCK_DIR/fault.sock
  start_daemon "$SOCK" POSTR_FAULT_INJECT="$site:1"
  for f in "$CORPUS_DIR"/*.smt2; do
    full=$("$CLIENT" --socket "$SOCK" --no-cache "$f"); rc=$?
    out=$(echo "$full" | head -1)
    case $rc in
      0|2|3|4|5|6) : ;;
      *) fail "fault $site $(basename "$f"): exit $rc ($out)" ;;
    esac
    echo "$out" | grep -Eq '^(sat|unsat|unknown( \(.*\))?)$' ||
      fail "fault $site $(basename "$f"): unstructured reply '$out'"
  done
  "$CLIENT" --socket "$SOCK" --ping >/dev/null ||
    fail "fault $site: daemon died during the sweep"
  stop_daemon "$SOCK"
  rm -f "$SOCK"
done

if [ "$FAILURES" -gt 0 ]; then
  echo "serve_ci: $FAILURES failure(s)" >&2
  exit 1
fi
echo "serve_ci: all checks passed"
