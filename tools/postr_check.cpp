//===- tools/postr_check.cpp - Independent Unsat certificate checker ------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Standalone verifier for `postr-cert` files emitted by the solver
// (POSTR_PROOF_DIR, fuzz --certify). Shares only the proof-format
// parser and the checking kernel with the solver; exit code 0 means
// every disjunct refutation was accepted.
//
//===----------------------------------------------------------------------===//

#include "proof/Check.h"
#include "proof/Proof.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace postr;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [-v] <certificate-file>... (or '-' for stdin)\n"
               "  Verifies postr-cert Unsat certificates. Exit 0: all\n"
               "  accepted; 1: at least one rejected or unreadable.\n"
               "  -v  print kernel counters per file\n",
               Argv0);
  return 2;
}

bool readAll(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream Ss;
    Ss << std::cin.rdbuf();
    Out = Ss.str();
    return true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Verbose = false;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "-v")
      Verbose = true;
    else if (A == "-h" || A == "--help")
      return usage(Argv[0]);
    else
      Files.push_back(A);
  }
  if (Files.empty())
    return usage(Argv[0]);

  int Failures = 0;
  for (const std::string &F : Files) {
    std::string Text;
    if (!readAll(F, Text)) {
      std::printf("%s: ERROR cannot read file\n", F.c_str());
      ++Failures;
      continue;
    }
    Result<proof::Certificate> Parsed = proof::parse(Text);
    if (!Parsed) {
      std::printf("%s: REJECTED (parse) %s\n", F.c_str(),
                  Parsed.error().c_str());
      ++Failures;
      continue;
    }
    proof::Certificate Cert = Parsed.take();
    proof::CheckOutcome Out = proof::checkCertificate(Cert);
    if (!Out.Ok) {
      std::printf("%s: REJECTED %s\n", F.c_str(), Out.Error.c_str());
      ++Failures;
      continue;
    }
    std::printf("%s: VERIFIED\n", F.c_str());
    if (Verbose)
      std::printf(
          "  refutations=%u trusted_rules=%u rup_checks=%llu "
          "farkas_leaves=%llu\n",
          Out.Stats.CheckedRefutations, Out.Stats.TrustedRules,
          static_cast<unsigned long long>(Out.Stats.RupChecks),
          static_cast<unsigned long long>(Out.Stats.FarkasLeaves));
  }
  return Failures == 0 ? 0 : 1;
}
