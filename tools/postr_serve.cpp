//===- tools/postr_serve.cpp - Resident solver daemon -----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The postr-serve daemon: listens on a Unix socket, frames SMT-LIB
// requests (serve/Protocol.h), and dispatches them to the fault-tolerant
// worker pool of serve/Server.h. Workers are forked child processes by
// default (`<exe> --worker-child <in> <out>` re-exec), so a crashed,
// killed, or runaway worker is contained, quarantined, and respawned
// while the daemon keeps serving.
//
//   postr_serve --socket /tmp/postr.sock [--no-fork] [--print-stats]
//
// Configuration is environment-driven (POSTR_SERVE_*, docs/KNOBS.md).
// A client `shutdown` request or SIGINT/SIGTERM stops the daemon; with
// --print-stats the final counter JSON lands on stdout at exit.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/Worker.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace postr;

namespace {

std::atomic<bool> GStop{false};
int GListenFd = -1;

void onStopSignal(int) {
  GStop.store(true);
  // Closing the listen fd unblocks accept(); async-signal-safe.
  if (GListenFd >= 0)
    ::close(GListenFd);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--no-fork] [--print-stats]\n"
               "       (configuration via POSTR_SERVE_* env vars, see "
               "docs/KNOBS.md)\n",
               Argv0);
  return 64;
}

/// One client connection: a sequence of frames until EOF. `shutdown`
/// stops the whole daemon after the acknowledgement is written.
void serveConnection(int Fd, serve::Server &Server) {
  const uint64_t MaxBytes = Server.options().MaxRequestBytes;
  for (;;) {
    Result<std::string> Frame = serve::readFrame(Fd, MaxBytes);
    if (!Frame) {
      if (Frame.error() != "eof") {
        serve::Response R;
        R.S = serve::Response::Error;
        R.Message = Frame.error();
        serve::writeFrame(Fd, serve::encodeResponse(R));
      }
      break;
    }
    Result<serve::Request> Req = serve::decodeRequest(*Frame);
    serve::Response Resp;
    if (!Req) {
      Resp.S = serve::Response::Error;
      Resp.Message = Req.error();
      Resp.ExitCode = 1;
    } else {
      Resp = Server.submit(*Req);
    }
    if (!serve::writeFrame(Fd, serve::encodeResponse(Resp)))
      break;
    if (Req && Req->K == serve::Request::Shutdown) {
      GStop.store(true);
      if (GListenFd >= 0)
        ::shutdown(GListenFd, SHUT_RDWR);
      break;
    }
  }
  ::close(Fd);
}

} // namespace

int main(int Argc, char **Argv) {
  // Hidden re-exec entry for forked workers (see Server::spawnWorker).
  if (Argc >= 4 && std::strcmp(Argv[1], "--worker-child") == 0)
    return serve::workerChildMain(std::atoi(Argv[2]), std::atoi(Argv[3]),
                                  serve::serveOptionsFromEnv());

  std::string SocketPath;
  bool NoFork = false, PrintStats = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--socket" && I + 1 < Argc)
      SocketPath = Argv[++I];
    else if (A == "--no-fork")
      NoFork = true;
    else if (A == "--print-stats")
      PrintStats = true;
    else
      return usage(Argv[0]);
  }
  if (SocketPath.empty() || SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return usage(Argv[0]);

  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction SA = {};
  SA.sa_handler = onStopSignal;
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);

  serve::ServeOptions Opts = serve::serveOptionsFromEnv();
  Opts.ForkWorkers = !NoFork;
  serve::Server Server(Opts);

  GListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (GListenFd < 0) {
    std::perror("socket");
    return 1;
  }
  ::unlink(SocketPath.c_str());
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(GListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(GListenFd, 64) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  std::fprintf(stderr, "postr-serve: listening on %s (%u %s workers)\n",
               SocketPath.c_str(), Opts.Workers,
               Opts.ForkWorkers ? "forked" : "in-process");

  std::vector<std::thread> Conns;
  while (!GStop.load()) {
    int Fd = ::accept(GListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen fd closed (signal/shutdown) or fatal
    }
    Conns.emplace_back(serveConnection, Fd, std::ref(Server));
  }
  for (std::thread &T : Conns)
    T.join();
  ::unlink(SocketPath.c_str());
  if (PrintStats)
    std::printf("%s\n", Server.statsJson().c_str());
  return 0;
}
